//! The static-analysis CI gate.
//!
//! Every program we ship — the four Section 6 workloads and every
//! recorded corpus entry — must be *proven* depth-safe by the abstract
//! interpreter, so the serving layer can route it to the unchecked fast
//! path. A program that loses its proof (or an engine change that breaks
//! a cache-FSM invariant) fails this suite, not production.

use stackcache_analysis::{analyze, check_fig18, render_analysis, render_fsm, Verdict};
use stackcache_harness::corpus;
use stackcache_vm::Checks;
use stackcache_workloads::{all_workloads, Scale};

/// Every Fig. 18 organization passes the cache-FSM model checker at the
/// report's register count.
#[test]
fn fig18_transition_tables_are_verified() {
    let reports = check_fig18(stackcache_analysis::fsm::CHECKED_REGISTERS);
    assert_eq!(reports.len(), 6);
    for r in &reports {
        assert!(r.ok(), "{}", render_fsm(&reports));
    }
}

/// Every workload program is proven safe on its own image machine, with
/// no lint diagnostics, and admits at least the no-underflow fast path.
#[test]
fn workload_programs_are_proven_safe() {
    for w in all_workloads(Scale::Small) {
        let machine = w.image.machine();
        let a = analyze(&w.image.program, Some(&machine));
        let text = render_analysis(w.name, &a);
        assert!(
            matches!(
                a.proof.verdict,
                Verdict::Total | Verdict::Proven | Verdict::Guarded
            ),
            "{text}"
        );
        assert!(a.proof.diagnostics.is_empty(), "{text}");
        let admitted = a.proof.admit(&machine);
        assert_ne!(admitted, Checks::Full, "{}: not admitted\n{text}", w.name);
    }
}

/// Every recorded corpus regression program is provable: corpus entries
/// are recorded from generator programs, which are depth-safe by
/// construction.
#[test]
fn corpus_programs_are_proven_safe() {
    let entries = corpus::load_all();
    assert!(!entries.is_empty(), "corpus must not be empty");
    for (name, program) in entries {
        let a = analyze(&program, None);
        let text = render_analysis(&name, &a);
        assert!(
            matches!(
                a.proof.verdict,
                Verdict::Total | Verdict::Proven | Verdict::Guarded
            ),
            "{text}"
        );
        assert!(a.proof.diagnostics.is_empty(), "{text}");
    }
}
