//! Validation of the peephole optimizer: on arbitrary stack-safe programs
//! the optimized code is observably equivalent, never longer, and
//! optimization is idempotent.
//!
//! Equivalence itself is also cross-checked continuously by the harness
//! (every oracle engine runs once plain and once peephole-optimized);
//! this test adds the optimizer-specific structural properties.

use stackcache_harness::{assert_agreement, gen};
use stackcache_vm::{exec, peephole, verify, Machine, Program, Rng};

const FUEL: u64 = 1_000_000;

/// The structural contract from the seed's property test: optimized code
/// verifies, never grows, reports its size honestly, behaves identically,
/// and a second pass finds nothing new.
fn check_optimizer_contract(p: &Program, ctx: &str) {
    let (q, stats) = peephole::optimize(p);
    assert!(
        verify(&q).is_ok(),
        "{ctx}: optimized program fails verification"
    );
    assert!(q.len() <= p.len(), "{ctx}: optimizer grew the program");
    assert_eq!(
        stats.after,
        q.len(),
        "{ctx}: stats.after disagrees with output length"
    );

    let mut m1 = Machine::with_memory(256);
    exec::run(p, &mut m1, FUEL).expect("original runs");
    let mut m2 = Machine::with_memory(256);
    exec::run(&q, &mut m2, FUEL).expect("optimized runs");
    assert_eq!(m1.stack(), m2.stack(), "{ctx}: stacks differ");
    assert_eq!(m1.output(), m2.output(), "{ctx}: output differs");

    // idempotence: a second pass finds nothing new
    let (r, stats2) = peephole::optimize(&q);
    assert_eq!(
        r.insts(),
        q.insts(),
        "{ctx}: second pass changed the program"
    );
    assert_eq!(stats2.rewrites, 0, "{ctx}: second pass claims rewrites");
}

/// The recorded `peephole_equivalence` proptest counterexample
/// (`cc 6516268c…`), promoted to a named deterministic test and replayed
/// against the full original assertion set. The same program also lives
/// in `tests/corpus/recorded-peephole-6516268c.asm` and is replayed
/// through the full oracle by `structured_agreement::corpus_replays_clean`.
#[test]
fn recorded_counterexample_6516268c() {
    let choices = [
        (0, 0),
        (35, 0),
        (89, 0),
        (11, 0),
        (160, 0),
        (65, 0),
        (103, 0),
        (35, 0),
        (158, 0),
        (43, 0),
        (83, 0),
        (182, 0),
        (2, 0),
        (5, 0),
        (74, 0),
        (103, 0),
        (0, 0),
        (0, 0),
        (0, 0),
        (0, 0),
    ];
    let p = gen::peephole_fodder(&choices);
    check_optimizer_contract(&p, "recorded cc 6516268c");
    assert_agreement(&p, FUEL);
}

#[test]
fn optimized_programs_are_equivalent() {
    for seed in 0..160u64 {
        let mut rng = Rng::new(0x9E_0000 + seed);
        let len = rng.range(1, 250);
        let choices = gen::random_choices(&mut rng, len, 64);
        let p = gen::peephole_fodder(&choices);
        check_optimizer_contract(&p, &format!("seed {seed}"));
    }
}

/// The optimizer preserves *branchy* programs too (leader detection and
/// branch-target remapping): structured programs through the full oracle,
/// which compares each engine plain vs peephole-optimized.
#[test]
fn optimizer_preserves_structured_programs() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x9E_1000 + seed);
        let p = gen::structured_program(&mut rng);
        check_optimizer_contract(&p, &format!("structured seed {seed}"));
        assert_agreement(&p, 10_000_000);
    }
}
