//! Property-based validation of the peephole optimizer: on arbitrary
//! stack-safe programs the optimized code is observably equivalent and
//! never longer.

use proptest::prelude::*;
use stack_caching::vm::{exec, peephole, verify, Inst, Machine, Program, ProgramBuilder};

/// Build a stack-safe straight-line program biased toward peephole fodder.
fn build_program(choices: &[(u8, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let mut depth: u32 = 0;
    for &(c, lit) in choices {
        match c % 12 {
            0 | 1 => {
                b.push(Inst::Lit(lit));
                depth += 1;
            }
            2 if depth >= 2 => {
                b.push(Inst::Add);
                depth -= 1;
            }
            3 if depth >= 2 => {
                b.push(Inst::Sub);
                depth -= 1;
            }
            4 if depth >= 1 => {
                b.push(Inst::Drop);
                depth -= 1;
            }
            5 if depth >= 2 => {
                b.push(Inst::Swap);
            }
            6 if depth >= 1 => {
                b.push(Inst::Dup);
                depth += 1;
            }
            7 if depth >= 1 => {
                b.push(Inst::Negate);
            }
            8 if depth >= 1 => {
                b.push(Inst::Invert);
            }
            9 if depth >= 2 => {
                b.push(Inst::Mul);
                depth -= 1;
            }
            10 if depth >= 1 => {
                b.push(Inst::ZeroEq);
            }
            _ => {
                b.push(Inst::Lit(1));
                depth += 1;
            }
        }
    }
    b.push(Inst::Halt);
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn optimized_programs_are_equivalent(choices in prop::collection::vec((any::<u8>(), -64i64..64), 1..250)) {
        let p = build_program(&choices);
        let (q, stats) = peephole::optimize(&p);
        prop_assert!(verify(&q).is_ok());
        prop_assert!(q.len() <= p.len());
        prop_assert_eq!(stats.after, q.len());

        let mut m1 = Machine::with_memory(256);
        exec::run(&p, &mut m1, 1_000_000).expect("original runs");
        let mut m2 = Machine::with_memory(256);
        exec::run(&q, &mut m2, 1_000_000).expect("optimized runs");
        prop_assert_eq!(m1.stack(), m2.stack());
        prop_assert_eq!(m1.output(), m2.output());

        // idempotence: a second pass finds nothing new
        let (r, stats2) = peephole::optimize(&q);
        prop_assert_eq!(r.insts(), q.insts());
        prop_assert_eq!(stats2.rewrites, 0);
    }
}
