//! Cross-validation on straight-line programs: every interpreter in the
//! workspace (reference, baseline, top-of-stack, dynamically cached,
//! statically cached, fused, quickened — each plain and
//! peephole-optimized), the dynamic
//! cache accounting of the Fig. 18 organizations, and the static-caching
//! cost compiler must agree on arbitrary stack-safe programs.
//!
//! All comparison logic lives in `stackcache-harness`; this test feeds it
//! the straight-line generator over the full instruction pool.

use stackcache_harness::{assert_agreement, gen};
use stackcache_vm::Rng;

const FUEL: u64 = 1_000_000;

#[test]
fn all_engines_agree_on_straight_line_programs() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x1A_0000 + seed);
        let len = rng.range(1, 200);
        let choices = gen::random_choices(&mut rng, len, 100);
        let p = gen::straight_line(&choices);
        let a = assert_agreement(&p, FUEL);
        assert!(
            a.configs >= 12,
            "seed {seed}: only {} configurations",
            a.configs
        );
    }
}

/// The oracle sweeps at least the advertised configuration matrix:
/// 22 wall-clock engines (including the fused, quickened, and jit
/// engines), 8 cache organizations, 3 two-stacks
/// register files, 5 static regimes.
#[test]
fn oracle_configuration_matrix_is_complete() {
    let p = gen::straight_line(&[(0, 1), (0, 2), (2, 0)]);
    let a = assert_agreement(&p, FUEL);
    assert_eq!(a.engine_configs, 22);
    assert_eq!(a.org_configs, 8);
    assert_eq!(a.twostacks_configs, 3);
    assert_eq!(a.static_configs, 5);
    assert_eq!(a.configs, 38);
}
