//! Property-based cross-validation: every interpreter in the workspace
//! (reference, baseline, top-of-stack, dynamically cached, statically
//! cached) produces identical observable behaviour on arbitrary stack-safe
//! programs.

use proptest::prelude::*;
use stack_caching::core::interp::{compile_static, run_dyncache, run_staticcache};
use stack_caching::vm::interp::{run_baseline, run_tos};
use stack_caching::vm::{exec, Inst, Machine, Program, ProgramBuilder};

/// Instructions whose only requirement is a minimum stack depth, tagged
/// with (pops, pushes).
const POOL: &[(Inst, u8, u8)] = &[
    (Inst::Add, 2, 1),
    (Inst::Sub, 2, 1),
    (Inst::Mul, 2, 1),
    (Inst::And, 2, 1),
    (Inst::Or, 2, 1),
    (Inst::Xor, 2, 1),
    (Inst::Min, 2, 1),
    (Inst::Max, 2, 1),
    (Inst::Eq, 2, 1),
    (Inst::Lt, 2, 1),
    (Inst::ULt, 2, 1),
    (Inst::Negate, 1, 1),
    (Inst::Invert, 1, 1),
    (Inst::Abs, 1, 1),
    (Inst::OnePlus, 1, 1),
    (Inst::OneMinus, 1, 1),
    (Inst::TwoStar, 1, 1),
    (Inst::TwoSlash, 1, 1),
    (Inst::ZeroEq, 1, 1),
    (Inst::ZeroLt, 1, 1),
    (Inst::Dup, 1, 2),
    (Inst::Drop, 1, 0),
    (Inst::Swap, 2, 2),
    (Inst::Over, 2, 3),
    (Inst::Rot, 3, 3),
    (Inst::MinusRot, 3, 3),
    (Inst::Nip, 2, 1),
    (Inst::Tuck, 2, 3),
    (Inst::TwoDup, 2, 4),
    (Inst::TwoDrop, 2, 0),
    (Inst::TwoSwap, 4, 4),
    (Inst::TwoOver, 4, 6),
    (Inst::QDup, 1, 2),
    (Inst::Depth, 0, 1),
    (Inst::Emit, 1, 0),
    (Inst::Dot, 1, 0),
];

/// Build a stack-safe straight-line program from a seed of choices.
fn build_program(choices: &[(u8, i64)]) -> Program {
    let mut b = ProgramBuilder::new();
    let mut depth: u32 = 0;
    for &(c, lit) in choices {
        // every third slot seeds a literal to keep the stack fed
        if c % 3 == 0 || depth == 0 {
            b.push(Inst::Lit(lit));
            depth += 1;
            continue;
        }
        let (inst, pops, pushes) = POOL[c as usize % POOL.len()];
        if u32::from(pops) <= depth {
            b.push(inst);
            depth = depth - u32::from(pops) + u32::from(pushes);
            // QDup may push one less at runtime; track conservatively
            if matches!(inst, Inst::QDup) {
                depth -= 1;
            }
        } else {
            b.push(Inst::Lit(lit));
            depth += 1;
        }
    }
    b.push(Inst::Halt);
    b.finish().expect("straight-line program is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn all_engines_agree(choices in prop::collection::vec((any::<u8>(), -100i64..100), 1..200)) {
        let p = build_program(&choices);
        let fuel = 1_000_000;

        let mut m_ref = Machine::with_memory(256);
        exec::run(&p, &mut m_ref, fuel).expect("reference runs");

        let mut m = Machine::with_memory(256);
        run_baseline(&p, &mut m, fuel).expect("baseline runs");
        prop_assert_eq!(m_ref.stack(), m.stack());
        prop_assert_eq!(m_ref.output(), m.output());

        let mut m = Machine::with_memory(256);
        run_tos(&p, &mut m, fuel).expect("tos runs");
        prop_assert_eq!(m_ref.stack(), m.stack());
        prop_assert_eq!(m_ref.output(), m.output());

        let mut m = Machine::with_memory(256);
        run_dyncache(&p, &mut m, fuel).expect("dyncache runs");
        prop_assert_eq!(m_ref.stack(), m.stack());
        prop_assert_eq!(m_ref.output(), m.output());

        for c in 0..=3u8 {
            let exe = compile_static(&p, c);
            let mut m = Machine::with_memory(256);
            run_staticcache(&exe, &mut m, fuel).expect("static runs");
            prop_assert_eq!(m_ref.stack(), m.stack(), "static canonical {}", c);
            prop_assert_eq!(m_ref.output(), m.output(), "static canonical {}", c);
        }
    }
}
