//! Fuzzing the proof oracle: proved-safe programs never raise the depth
//! traps their proofs rule out, and execution at the proof-admitted
//! checks level agrees with fully checked execution — on every regime,
//! plain and peephole-optimized.
//!
//! The generators and the oracle itself live in `stackcache-harness`;
//! this suite drives them over every program family and asserts the
//! proofs are not vacuous (the analyzer admits the bulk of generated
//! programs to a fast path).

use stackcache_harness::gen;
use stackcache_harness::{
    assert_agreement, assert_proof_agreement, cross_validate_proof_on, MEMORY_BYTES,
};
use stackcache_vm::{Checks, Machine, Rng};

const FUEL: u64 = 10_000_000;

#[test]
fn structured_programs_honour_their_proofs() {
    let mut admitted = 0;
    for seed in 0..96u64 {
        let mut rng = Rng::new(0x9F_0000 + seed);
        let p = gen::structured_program(&mut rng);
        let a = assert_proof_agreement(&p, FUEL);
        if a.admitted != Checks::Full {
            assert_eq!(a.configs, 22, "seed {seed}: 11 regimes x plain/peephole");
            admitted += 1;
        }
    }
    assert!(
        admitted >= 48,
        "only {admitted}/96 structured programs admitted a fast path; the fuzz is vacuous"
    );
}

#[test]
fn straight_line_programs_honour_their_proofs() {
    let mut admitted = 0;
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x9F_1000 + seed);
        let choices = gen::random_choices(&mut rng, 40, 64);
        let p = gen::straight_line(&choices);
        let a = assert_proof_agreement(&p, FUEL);
        if a.admitted != Checks::Full {
            admitted += 1;
        }
    }
    assert!(admitted >= 32, "only {admitted}/64 admitted");
}

#[test]
fn memory_programs_honour_their_proofs() {
    let mut admitted = 0;
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x9F_2000 + seed);
        let choices = gen::random_choices(&mut rng, 40, 64);
        let p = gen::memory_fodder(&choices, MEMORY_BYTES);
        let a = assert_proof_agreement(&p, FUEL);
        if a.admitted != Checks::Full {
            admitted += 1;
        }
    }
    assert!(admitted >= 32, "only {admitted}/64 admitted");
}

#[test]
fn call_nests_honour_their_proofs() {
    let mut admitted = 0;
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x9F_3000 + seed);
        let p = gen::call_nest_program(&mut rng, 6);
        let a = assert_proof_agreement(&p, FUEL);
        if a.admitted != Checks::Full {
            admitted += 1;
        }
    }
    assert!(admitted >= 24, "only {admitted}/48 admitted");
}

/// The soundness campaign behind the interval tentpole: 300+ generated
/// programs from every family, each cross-validated twice —
///
/// * the proof oracle (22 regime × peephole configurations) checks that
///   no elided check would have fired and that the admitted-level
///   outcome is byte-identical to full checks, and that any proven fuel
///   bound ceilings the reference interpreter's dispatch count;
/// * the engine oracle (all 38 engine/org/two-stacks/static
///   configurations) checks that every execution strategy agrees on the
///   outcome regardless of the proof.
///
/// The tallies at the end keep the campaign honest: a healthy share of
/// programs must be admitted past full checks, and a healthy share of
/// those must carry a finite, *validated* fuel bound.
#[test]
fn soundness_campaign_proofs_hold_across_every_config() {
    let mut rounds = 0usize;
    let mut admitted = 0usize;
    let mut fuel_proofs = 0usize;
    for seed in 0..100u64 {
        let mut rng = Rng::new(0x50F7_0000 + seed);
        let structured = gen::structured_program(&mut rng);
        let line = gen::straight_line(&gen::random_choices(&mut rng, 32, 64));
        let nest = gen::call_nest_program(&mut rng, 5);
        for p in [&structured, &line, &nest] {
            let proof = assert_proof_agreement(p, FUEL);
            let engines = assert_agreement(p, FUEL);
            assert_eq!(
                engines.configs, 38,
                "seed {seed}: the engine oracle must span all 38 configurations"
            );
            rounds += 1;
            if proof.admitted != Checks::Full {
                admitted += 1;
            }
            if proof.fuel_bound.is_some() {
                fuel_proofs += 1;
            }
        }
    }
    assert!(
        rounds >= 300,
        "only {rounds} rounds: the campaign is too small"
    );
    assert!(
        admitted >= rounds / 2,
        "only {admitted}/{rounds} admitted a fast path; the campaign is vacuous"
    );
    assert!(
        fuel_proofs >= rounds / 10,
        "only {fuel_proofs}/{rounds} carried a validated fuel bound; \
         the total-verdict path is under-exercised"
    );
}

/// Proofs are relative to the entry: starting from a machine with a
/// preset stack must not break either promise.
#[test]
fn seeded_machines_honour_their_proofs() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0x9F_4000 + seed);
        let p = gen::structured_program(&mut rng);
        let proto = gen::seeded_machine(&mut rng, MEMORY_BYTES, 6);
        if let Err(d) = cross_validate_proof_on(&p, &proto, FUEL) {
            panic!("seed {seed}: {d}");
        }
    }
}

/// An unprovable program (its growth depends on an input cell read from
/// memory) still round-trips through the oracle: nothing is promised, so
/// nothing can diverge.
#[test]
fn unadmitted_programs_are_vacuously_fine() {
    use stackcache_vm::{program_of, Inst};
    // loop bound comes from memory: growth is input-driven
    let p = program_of(&[
        Inst::Lit(0),
        Inst::Fetch,
        Inst::Lit(1),
        Inst::Add,
        Inst::Dup,
        Inst::BranchIfZero(7),
        Inst::Halt,
        Inst::Halt,
    ]);
    let proto = Machine::with_memory(MEMORY_BYTES);
    let a = cross_validate_proof_on(&p, &proto, FUEL).expect("vacuous or upheld");
    assert!(a.configs == 0 || a.admitted != Checks::Full);
}
