//! Cross-validation on *structured* programs: nested conditionals and
//! loops exercise the static-caching compiler's block-boundary
//! reconciliation and the dynamic cache's state carry-over across control
//! flow, which straight-line fuzzing cannot reach.
//!
//! The generator and all comparison logic live in `stackcache-harness`.

use stackcache_harness::gen::{self, Frag};
use stackcache_harness::{assert_agreement, corpus};
use stackcache_vm::asm::{assemble, disassemble};
use stackcache_vm::Rng;

const FUEL: u64 = 10_000_000;

/// Recorded corpus programs replay deterministically *before* any random
/// fuzzing, so known-bad inputs are always retried first.
#[test]
fn corpus_replays_clean() {
    let replayed = corpus::replay_all(FUEL);
    assert!(
        replayed >= 2,
        "expected the two recorded counterexamples, got {replayed}"
    );
}

/// The recorded `structured_agreement` proptest counterexample
/// (`cc aebbc686…`: `Loop(1, [PopInto, Push(2)])`), promoted to a named
/// deterministic test. The suspect was the static compiler's back-edge
/// handling; the full oracle (including threaded-joins and optimal
/// codegen) now covers it.
#[test]
fn recorded_counterexample_loop_popinto_push() {
    let frags = vec![Frag::Loop(1, vec![Frag::PopInto, Frag::Push(2)])];
    let p = gen::build_structured(&frags);
    assert_agreement(&p, FUEL);
}

#[test]
fn structured_programs_agree_across_all_engines() {
    for seed in 0..96u64 {
        let mut rng = Rng::new(0x57_0000 + seed);
        let p = gen::structured_program(&mut rng);
        let a = assert_agreement(&p, FUEL);
        assert!(a.configs >= 12, "seed {seed}");
    }
}

/// The assembler and disassembler round-trip arbitrary structured
/// programs exactly (this also keeps the corpus file format honest).
#[test]
fn assembly_roundtrips() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x57_1000 + seed);
        let p = gen::structured_program(&mut rng);
        let text = disassemble(&p);
        let q = assemble(&text).expect("disassembly reassembles");
        assert_eq!(p.insts(), q.insts(), "seed {seed}");
        assert_eq!(p.entry(), q.entry(), "seed {seed}");
    }
}
