//! Property-based cross-validation on *structured* programs: nested
//! conditionals and loops exercise the static-caching compiler's
//! block-boundary reconciliation and the dynamic cache's state carry-over
//! across control flow, which straight-line fuzzing cannot reach.

use proptest::prelude::*;
use stack_caching::core::interp::{compile_static, run_dyncache, run_staticcache};
use stack_caching::core::staticcache::{self, StaticOptions, StaticRegime};
use stack_caching::core::Org;
use stack_caching::vm::interp::{run_baseline, run_tos};
use stack_caching::vm::{exec, verify, Inst, Machine, Program, ProgramBuilder};

/// A structured program fragment. Every fragment preserves the stack
/// depth contract encoded in its generation, so programs never underflow.
#[derive(Debug, Clone)]
enum Frag {
    /// depth-neutral ops applied to one pushed scratch value
    Ops(Vec<u8>),
    /// push a value
    Push(i64),
    /// pop a value (guarded by generation-time depth tracking)
    PopInto,
    /// if/else: both arms are depth-balanced
    IfElse(Vec<Frag>, Vec<Frag>),
    /// a bounded countdown loop whose body is depth-balanced
    Loop(u8, Vec<Frag>),
}

fn arb_frag() -> impl Strategy<Value = Frag> {
    let leaf = prop_oneof![
        prop::collection::vec(any::<u8>(), 1..6).prop_map(Frag::Ops),
        (-100i64..100).prop_map(Frag::Push),
        Just(Frag::PopInto),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            (
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(a, b)| Frag::IfElse(a, b)),
            (1u8..4, prop::collection::vec(inner, 0..4))
                .prop_map(|(n, body)| Frag::Loop(n, body)),
        ]
    })
}

/// Emit a fragment. `depth` tracks the guaranteed stack depth and `floor`
/// the region a fragment may not pop into (protecting enclosing loop
/// counters); fragments that would underflow degrade to pushes. Each
/// `Frag::Ops`/arm/body is emitted depth-balanced.
fn emit(b: &mut ProgramBuilder, frag: &Frag, depth: &mut u32, floor: u32) {
    match frag {
        Frag::Push(n) => {
            b.push(Inst::Lit(*n));
            *depth += 1;
        }
        Frag::PopInto => {
            if *depth > floor {
                b.push(Inst::Drop);
                *depth -= 1;
            } else {
                b.push(Inst::Lit(7));
                *depth += 1;
            }
        }
        Frag::Ops(codes) => {
            // operate on a scratch value so the net effect is +1
            b.push(Inst::Lit(5));
            *depth += 1;
            for c in codes {
                match c % 8 {
                    0 => {
                        b.push(Inst::OnePlus);
                    }
                    1 => {
                        b.push(Inst::Negate);
                    }
                    2 => {
                        // dup then fold back: depth-neutral
                        b.push(Inst::Dup);
                        b.push(Inst::Xor);
                    }
                    3 => {
                        b.push(Inst::Invert);
                    }
                    4 => {
                        b.push(Inst::Dup);
                        b.push(Inst::Mul);
                    }
                    5 => {
                        b.push(Inst::Dup);
                        b.push(Inst::Swap);
                        b.push(Inst::Sub);
                    }
                    6 => {
                        b.push(Inst::ZeroEq);
                    }
                    _ => {
                        b.push(Inst::Abs);
                    }
                }
            }
        }
        Frag::IfElse(then_arm, else_arm) => {
            // condition from the scratch value parity (or a literal)
            if *depth > 0 {
                b.push(Inst::Dup);
                b.push(Inst::Lit(1));
                b.push(Inst::And);
            } else {
                b.push(Inst::Lit(1));
            }
            let else_l = b.new_label();
            let end_l = b.new_label();
            b.branch_if_zero(else_l);
            let mut d_then = *depth;
            for f in then_arm {
                emit(b, f, &mut d_then, floor);
            }
            balance(b, &mut d_then, *depth);
            b.branch(end_l);
            b.bind(else_l).unwrap();
            let mut d_else = *depth;
            for f in else_arm {
                emit(b, f, &mut d_else, floor);
            }
            balance(b, &mut d_else, *depth);
            b.bind(end_l).unwrap();
        }
        Frag::Loop(n, body) => {
            b.push(Inst::Lit(i64::from(*n)));
            *depth += 1;
            let top = b.new_label();
            b.bind(top).unwrap();
            let entry_depth = *depth;
            let mut d = *depth;
            for f in body {
                // the loop counter (and everything below) is off limits
                emit(b, f, &mut d, entry_depth);
            }
            balance(b, &mut d, entry_depth);
            b.push(Inst::OneMinus);
            b.push(Inst::Dup);
            b.push(Inst::ZeroGt);
            let out = b.new_label();
            b.branch_if_zero(out);
            b.branch(top);
            b.bind(out).unwrap();
            b.push(Inst::Drop);
            *depth -= 1;
        }
    }
}

/// Pad or drop until the depth matches `target`.
fn balance(b: &mut ProgramBuilder, depth: &mut u32, target: u32) {
    while *depth < target {
        b.push(Inst::Lit(0));
        *depth += 1;
    }
    while *depth > target {
        b.push(Inst::Drop);
        *depth -= 1;
    }
}

fn build(frags: &[Frag]) -> Program {
    let mut b = ProgramBuilder::new();
    let mut depth = 0u32;
    for f in frags {
        emit(&mut b, f, &mut depth, 0);
    }
    // fold everything into one value so the comparison is meaningful
    while depth > 1 {
        b.push(Inst::Xor);
        depth -= 1;
    }
    if depth == 1 {
        b.push(Inst::Dot);
    }
    b.push(Inst::Halt);
    b.finish().expect("generated program is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn structured_programs_agree_across_all_engines(
        frags in prop::collection::vec(arb_frag(), 1..8)
    ) {
        let p = build(&frags);
        verify(&p).expect("verifies");
        let fuel = 10_000_000;

        let mut m_ref = Machine::with_memory(256);
        exec::run(&p, &mut m_ref, fuel).expect("reference runs");
        let expected_out = m_ref.output().to_vec();

        let mut m = Machine::with_memory(256);
        run_baseline(&p, &mut m, fuel).expect("baseline");
        prop_assert_eq!(m.output(), &expected_out[..]);

        let mut m = Machine::with_memory(256);
        run_tos(&p, &mut m, fuel).expect("tos");
        prop_assert_eq!(m.output(), &expected_out[..]);

        let mut m = Machine::with_memory(256);
        run_dyncache(&p, &mut m, fuel).expect("dyncache");
        prop_assert_eq!(m.output(), &expected_out[..]);

        for c in 0..=3u8 {
            let exe = compile_static(&p, c);
            let mut m = Machine::with_memory(256);
            run_staticcache(&exe, &mut m, fuel).expect("static");
            prop_assert_eq!(m.output(), &expected_out[..], "canonical {}", c);
        }

        // the counting static compiler agrees on instruction counts
        let org = Org::static_shuffle(3);
        let sp = staticcache::compile(&p, &org, &StaticOptions::with_canonical(2));
        let mut reg = StaticRegime::new(&sp);
        let mut m = Machine::with_memory(256);
        let out = exec::run_with_observer(&p, &mut m, fuel, &mut reg).expect("counts");
        prop_assert_eq!(reg.counts.insts, out.executed);
        prop_assert!(reg.counts.dispatches <= reg.counts.insts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The assembler and disassembler round-trip arbitrary structured
    /// programs exactly.
    #[test]
    fn assembly_roundtrips(frags in prop::collection::vec(arb_frag(), 1..8)) {
        use stack_caching::vm::asm::{assemble, disassemble};
        let p = build(&frags);
        let text = disassemble(&p);
        let q = assemble(&text).expect("disassembly reassembles");
        prop_assert_eq!(p.insts(), q.insts());
        prop_assert_eq!(p.entry(), q.entry());
    }

    /// The peephole optimizer preserves structured-program behaviour too
    /// (branches, loops, target remapping).
    #[test]
    fn peephole_preserves_structured_programs(frags in prop::collection::vec(arb_frag(), 1..8)) {
        use stack_caching::vm::peephole;
        let p = build(&frags);
        let (q, _) = peephole::optimize(&p);
        verify(&q).expect("optimized verifies");
        let mut m1 = Machine::with_memory(256);
        exec::run(&p, &mut m1, 10_000_000).expect("original runs");
        let mut m2 = Machine::with_memory(256);
        exec::run(&q, &mut m2, 10_000_000).expect("optimized runs");
        prop_assert_eq!(m1.output(), m2.output());
        prop_assert_eq!(m1.stack(), m2.stack());
    }
}
