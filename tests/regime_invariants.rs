//! Invariants of the counting regimes: whatever the program, the cache
//! accounting must balance.
//!
//! The per-transition conservation law (`cached' = cached + loads −
//! stores − pops + pushes`) is checked in lockstep by the harness oracle;
//! this test adds the cross-regime aggregate inequalities from the seed.

use stack_caching::core::regime::{CachedRegime, ConstantKRegime, SimpleRegime};
use stack_caching::core::Org;
use stack_caching::vm::{exec, ExecObserver, Machine, Rng};
use stackcache_harness::gen;

#[test]
fn cache_accounting_balances() {
    for seed in 0..96u64 {
        let mut rng = Rng::new(0x4E_0000 + seed);
        let len = rng.range(1, 300);
        let choices = gen::random_choices(&mut rng, len, 50);
        let p = gen::regime_fodder(&choices);

        let mut simple = SimpleRegime::new();
        let org3 = Org::minimal(3);
        let org6 = Org::one_dup(4);
        let mut dyn3 = CachedRegime::new(&org3, 3);
        let mut dyn6 = CachedRegime::new(&org6, 2);
        let mut k2 = ConstantKRegime::new(2);
        {
            let mut obs: Vec<&mut dyn ExecObserver> =
                vec![&mut simple, &mut dyn3, &mut dyn6, &mut k2];
            let mut m = Machine::with_memory(256);
            exec::run_with_observer(&p, &mut m, 1_000_000, &mut obs).expect("runs");
        }

        for cached in [&dyn3.counts, &dyn6.counts, &k2.counts] {
            // a cache never makes more memory traffic than no cache
            assert!(
                cached.loads <= simple.counts.loads,
                "seed {seed}: loads {} > uncached {}",
                cached.loads,
                simple.counts.loads
            );
            assert!(
                cached.stores <= simple.counts.stores,
                "seed {seed}: stores {} > uncached {}",
                cached.stores,
                simple.counts.stores
            );
            // sp-update minimization never increases updates
            assert!(cached.updates <= simple.counts.updates, "seed {seed}");
            // traffic is conservative: what is loaded must have been
            // stored by this program (the stack starts empty), modulo the
            // items still cached at halt.
            assert!(
                cached.loads <= cached.stores + 8,
                "seed {seed}: loads {} stores {}",
                cached.loads,
                cached.stores
            );
            assert_eq!(cached.insts, simple.counts.insts, "seed {seed}");
        }
        // the uncached baseline has zero moves; caching may move
        assert_eq!(simple.counts.moves, 0, "seed {seed}");
    }
}

/// The same aggregate invariants hold on branchy structured programs,
/// not just straight-line ones.
#[test]
fn cache_accounting_balances_on_structured_programs() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x4E_1000 + seed);
        let p = gen::structured_program(&mut rng);

        let mut simple = SimpleRegime::new();
        let org = Org::minimal(4);
        let mut dyn4 = CachedRegime::new(&org, 4);
        {
            let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut simple, &mut dyn4];
            let mut m = Machine::with_memory(256);
            exec::run_with_observer(&p, &mut m, 10_000_000, &mut obs).expect("runs");
        }
        assert!(dyn4.counts.loads <= simple.counts.loads, "seed {seed}");
        assert!(dyn4.counts.stores <= simple.counts.stores, "seed {seed}");
        assert!(dyn4.counts.updates <= simple.counts.updates, "seed {seed}");
        assert_eq!(dyn4.counts.insts, simple.counts.insts, "seed {seed}");
    }
}
