//! Property-based invariants of the counting regimes: whatever the
//! program, the cache accounting must balance.

use proptest::prelude::*;
use stack_caching::core::regime::{CachedRegime, ConstantKRegime, SimpleRegime};
use stack_caching::core::Org;
use stack_caching::vm::{exec, ExecObserver, Inst, Machine, Program, ProgramBuilder};

fn build_program(choices: &[(u8, i64)]) -> Program {
    // pushes, pops, shuffles and arithmetic; always stack-safe
    let mut b = ProgramBuilder::new();
    let mut depth: u32 = 0;
    for &(c, lit) in choices {
        match c % 7 {
            0 | 1 => {
                b.push(Inst::Lit(lit));
                depth += 1;
            }
            2 if depth >= 2 => {
                b.push(Inst::Add);
                depth -= 1;
            }
            3 if depth >= 1 => {
                b.push(Inst::Drop);
                depth -= 1;
            }
            4 if depth >= 2 => {
                b.push(Inst::Swap);
            }
            5 if depth >= 1 => {
                b.push(Inst::Dup);
                depth += 1;
            }
            6 if depth >= 3 => {
                b.push(Inst::Rot);
            }
            _ => {
                b.push(Inst::Lit(lit));
                depth += 1;
            }
        }
    }
    b.push(Inst::Halt);
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn cache_accounting_balances(choices in prop::collection::vec((any::<u8>(), -50i64..50), 1..300)) {
        let p = build_program(&choices);
        let mut simple = SimpleRegime::new();
        let org3 = Org::minimal(3);
        let org6 = Org::one_dup(4);
        let mut dyn3 = CachedRegime::new(&org3, 3);
        let mut dyn6 = CachedRegime::new(&org6, 2);
        let mut k2 = ConstantKRegime::new(2);
        {
            let mut obs: Vec<&mut dyn ExecObserver> =
                vec![&mut simple, &mut dyn3, &mut dyn6, &mut k2];
            let mut m = Machine::with_memory(256);
            exec::run_with_observer(&p, &mut m, 1_000_000, &mut obs).expect("runs");
        }

        for cached in [&dyn3.counts, &dyn6.counts, &k2.counts] {
            // a cache never makes more memory traffic than no cache
            prop_assert!(cached.loads <= simple.counts.loads,
                "loads {} > uncached {}", cached.loads, simple.counts.loads);
            prop_assert!(cached.stores <= simple.counts.stores,
                "stores {} > uncached {}", cached.stores, simple.counts.stores);
            // sp-update minimization never increases updates
            prop_assert!(cached.updates <= simple.counts.updates);
            // every value stored by the cache is eventually... at least:
            // traffic is conservative: what is loaded must have been
            // stored by this program (the stack starts empty), modulo the
            // items still cached at halt.
            prop_assert!(cached.loads <= cached.stores + 8,
                "loads {} stores {}", cached.loads, cached.stores);
            prop_assert_eq!(cached.insts, simple.counts.insts);
        }
        // the uncached baseline has zero moves; caching may move
        prop_assert_eq!(simple.counts.moves, 0);
    }
}
