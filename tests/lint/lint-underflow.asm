; stklint fixture: `+` on an empty stack is a definite underflow on
; every path — stklint must exit nonzero on this file.
entry:
    +
    halt
