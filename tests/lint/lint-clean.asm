; stklint fixture: a loop-free, depth-safe program the analyzer proves
; total — stklint must exit zero on this file.
entry:
    lit 6
    dup
    *
    .
    halt
