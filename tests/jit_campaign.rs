//! The template-JIT differential campaign (ISSUE 10 acceptance).
//!
//! Every round generates a program, runs it through the full oracle
//! matrix — which now includes the `jit` engine, plain and peephole —
//! and demands byte-identical outcomes. On top of the random sweep the
//! campaign pins the cases a block JIT is most likely to get wrong:
//! trap *order* within a block, fuel exhaustion at every boundary, and
//! cache invalidation after quickening-style program rewrites.
//!
//! Debug builds run a reduced round count so `cargo test` stays fast;
//! the CI `jit` job runs this suite in release mode at full strength.

use stackcache_harness::{all_engines, assert_agreement, cross_validate, gen};
use stackcache_jit as jit;
use stackcache_vm::interp::run_baseline_with_checks;
use stackcache_vm::{program_of, Checks, Inst, Machine, Program, Rng};

const FUEL: u64 = 1_000_000;

fn rounds(full: usize) -> usize {
    if cfg!(debug_assertions) {
        full / 5
    } else {
        full
    }
}

fn jit_vs_baseline(p: &Program, fuel: u64) {
    let mut mj = Machine::with_memory(256);
    let mut mb = Machine::with_memory(256);
    let rj = jit::run_jit_with_checks(p, &mut mj, fuel, Checks::Full);
    let rb = run_baseline_with_checks(p, &mut mb, fuel, Checks::Full);
    match (&rj, &rb) {
        (Ok(a), Ok(b)) => assert_eq!(a.executed, b.executed, "fuel {fuel}"),
        (Err(a), Err(b)) => assert_eq!(a, b, "fuel {fuel}"),
        _ => panic!("fuel {fuel}: jit {rj:?} vs baseline {rb:?}"),
    }
    assert_eq!(mj.stack(), mb.stack(), "fuel {fuel}");
    assert_eq!(mj.rstack(), mb.rstack(), "fuel {fuel}");
    assert_eq!(mj.output(), mb.output(), "fuel {fuel}");
    assert_eq!(mj.memory(), mb.memory(), "fuel {fuel}");
}

/// The engine registry advertises the jit configurations the campaign
/// claims to cover.
#[test]
fn campaign_covers_the_jit_engine() {
    let engines = all_engines();
    assert!(engines.iter().any(|e| e.name == "jit"));
    assert!(engines.iter().any(|e| e.name == "jit+peephole"));
    assert_eq!(engines.len(), 22);
}

/// Random structured programs (loops, calls, conditionals) through the
/// full oracle matrix. Release: 150 rounds of 38 configurations each.
#[test]
fn structured_rounds_agree_across_all_engines() {
    for seed in 0..rounds(150) as u64 {
        let mut rng = Rng::new(0x317_0000 + seed);
        let p = gen::structured_program(&mut rng);
        let a = assert_agreement(&p, FUEL);
        assert_eq!(a.configs, 38, "seed {seed}");
    }
}

/// Random straight-line and memory-touching programs: heavy on the
/// arithmetic/shuffle/memory templates and their trap stubs.
#[test]
fn straightline_and_memory_rounds_agree() {
    for seed in 0..rounds(100) as u64 {
        let mut rng = Rng::new(0x317_1000 + seed);
        let choices = gen::random_choices(&mut rng, 48, 64);
        let line = gen::straight_line(&choices);
        if let Err(d) = cross_validate(&line, FUEL) {
            panic!("seed {seed} line: {d}");
        }
        let memp = gen::memory_fodder(&choices, 256);
        if let Err(d) = cross_validate(&memp, FUEL) {
            panic!("seed {seed} mem: {d}");
        }
    }
}

/// Call-nest programs: return-stack discipline and Return bounds.
#[test]
fn call_nest_rounds_agree() {
    for seed in 0..rounds(50) as u64 {
        let mut rng = Rng::new(0x317_2000 + seed);
        let p = gen::call_nest_program(&mut rng, 6);
        if let Err(d) = cross_validate(&p, FUEL) {
            panic!("seed {seed}: {d}");
        }
    }
}

/// Trap order within a block: when several instructions in one native
/// block could trap, the jit must report the *first* one at the exact
/// ip, not whichever guard happens to be cheapest.
#[test]
fn trap_order_within_blocks_is_exact() {
    use Inst::*;
    let cases: &[&[Inst]] = &[
        // underflow at ip 1 must win over div-by-zero at ip 4
        &[Lit(1), Add, Lit(1), Lit(0), Div, Halt],
        // div-by-zero at ip 2 must win over oob store at ip 5
        &[Lit(1), Lit(0), Div, Lit(-8), Store, Halt],
        // oob fetch at ip 1 must win over underflow at ip 2
        &[Lit(1 << 40), Fetch, Add, Halt],
        // mod-by-zero at ip 2 must win over later underflow
        &[Lit(5), Lit(0), Mod, Drop, Drop, Drop, Halt],
        // rstack underflow at ip 0 must win over everything after
        &[FromR, Lit(0), Div, Halt],
        // two oob accesses: the first one reports
        &[Lit(10_000), Fetch, Lit(20_000), Fetch, Halt],
    ];
    // These cases are compared jit-vs-baseline (not through the full
    // oracle): some deliberately underflow mid-block, where the static
    // cache engines have a pre-existing, documented trap-order slack
    // the fuzz generators avoid. The jit makes the *strict* promise.
    for insts in cases {
        let p = program_of(insts);
        for fuel in 0..=insts.len() as u64 + 1 {
            jit_vs_baseline(&p, fuel);
        }
        jit_vs_baseline(&p, FUEL);
    }
}

/// Fuel exhaustion at every possible boundary of looping programs: the
/// jit's block-level fuel accounting must land on the same instruction
/// as the interpreter's per-instruction accounting.
#[test]
fn fuel_exhaustion_at_every_boundary() {
    use Inst::*;
    let countdown = program_of(&[
        Lit(12),
        Dup,
        BranchIfZero(6),
        Lit(1),
        Sub,
        Branch(1),
        Drop,
        Halt,
    ]);
    let do_loop = {
        let mut rng = Rng::new(0x317_3000);
        gen::structured_program(&mut rng)
    };
    for fuel in 0..120 {
        jit_vs_baseline(&countdown, fuel);
        jit_vs_baseline(&do_loop, fuel);
    }
}

/// Quickening-style invalidation: after `jit::invalidate()` the cache
/// must recompile rather than dispatch stale native code, and outcomes
/// must be identical before and after.
#[test]
fn invalidation_retires_stale_native_code() {
    use Inst::*;
    let p = program_of(&[Lit(7), Dup, Mul, Lit(2), Add, Halt]);

    let run = |p: &Program| {
        let mut m = Machine::with_memory(256);
        let r = jit::run_jit(p, &mut m, FUEL).map(|s| s.executed);
        (r, m.stack().to_vec(), m.output().to_vec())
    };

    let first = run(&p);
    let warm = run(&p); // served from cache
    assert_eq!(first, warm);

    let before = jit::stats();
    jit::invalidate();
    let after_inval = run(&p); // generation bumped: must recompile
    let after = jit::stats();
    assert_eq!(first, after_inval);
    assert!(
        after.invalidations > before.invalidations,
        "invalidate() must count"
    );

    // A rewritten program body (what quickening does in place) is a
    // different compilation even without an invalidate: the cache keys
    // on the full instruction vector, never a lossy hash.
    let rewritten = program_of(&[Lit(7), Dup, Mul, Lit(3), Add, Halt]);
    let mut mj = Machine::with_memory(256);
    let mut mb = Machine::with_memory(256);
    let rj = jit::run_jit(&rewritten, &mut mj, FUEL).map(|s| s.executed);
    let rb = run_baseline_with_checks(&rewritten, &mut mb, FUEL, Checks::Full).map(|s| s.executed);
    assert_eq!(rj.ok(), rb.ok());
    assert_eq!(mj.stack(), mb.stack());
    assert_ne!(mj.stack(), first.1, "rewritten body must change the result");

    // And the full oracle agrees on both bodies after the invalidation.
    for q in [&p, &rewritten] {
        if let Err(d) = cross_validate(q, FUEL) {
            panic!("post-invalidation: {d}");
        }
    }
}

/// Many distinct programs churning the bounded block cache: eviction
/// (wholesale clear at capacity) must never change outcomes.
#[test]
fn cache_churn_preserves_outcomes() {
    for seed in 0..rounds(40) as u64 {
        let mut rng = Rng::new(0x317_4000 + seed);
        let choices = gen::random_choices(&mut rng, 24, 32);
        let p = gen::straight_line(&choices);
        jit_vs_baseline(&p, FUEL);
        jit_vs_baseline(&p, FUEL); // warm pass: cache hit path
    }
}
