//! The paper's headline claims, checked end-to-end at small scale.

use stack_caching::core::interp::compile_static;
use stack_caching::core::regime::{CachedRegime, ConstantKRegime, SimpleRegime};
use stack_caching::core::{CostModel, Org};
use stack_caching::vm::ExecObserver;
use stackcache_bench::fig18;
use stackcache_workloads::{all_workloads, Scale};

/// Fig. 18 is reproduced exactly (the one hard-number table in the paper).
#[test]
fn fig18_table_is_exact() {
    let rows = fig18::run();
    for (name, counts) in fig18::PAPER {
        let row = rows.iter().find(|r| r.organization == *name).expect(name);
        assert_eq!(&row.counts[..], *counts, "{name}");
    }
}

/// Section 2.3 / Fig. 21: keeping one item in a register is always a win;
/// keeping more introduces moves that eat the savings.
#[test]
fn keeping_one_item_is_the_sweet_spot() {
    let model = CostModel::paper();
    let mut simple = SimpleRegime::new();
    let mut k1 = ConstantKRegime::new(1);
    let mut k3 = ConstantKRegime::new(3);
    for w in all_workloads(Scale::Small) {
        let mut obs: Vec<&mut dyn ExecObserver> = vec![&mut simple, &mut k1, &mut k3];
        w.run_with_observer(&mut obs).expect("runs");
    }
    let c0 = simple.counts.access_per_inst(&model);
    let c1 = k1.counts.access_per_inst(&model);
    let c3 = k3.counts.access_per_inst(&model);
    assert!(c1 < c0, "k=1 must beat uncached: {c1} vs {c0}");
    assert!(c1 < c3, "k=1 must beat k=3: {c1} vs {c3}");
}

/// Section 3/4: on-demand caching cuts memory traffic far below the
/// uncached baseline, and more registers keep helping.
#[test]
fn dynamic_caching_scales_with_registers() {
    let orgs: Vec<Org> = (1..=6).map(Org::minimal).collect();
    let mut sims: Vec<CachedRegime> = orgs
        .iter()
        .map(|o| CachedRegime::new(o, o.registers()))
        .collect();
    for w in all_workloads(Scale::Small) {
        w.run_with_observer(&mut sims).expect("runs");
    }
    let model = CostModel::paper();
    let overheads: Vec<f64> = sims
        .iter()
        .map(|s| s.counts.access_per_inst(&model))
        .collect();
    for w in overheads.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-9,
            "more registers must not hurt: {overheads:?}"
        );
    }
    assert!(
        overheads[5] < 0.5 * overheads[0],
        "six registers should cut the one-register overhead by far: {overheads:?}"
    );
}

/// Section 5: static caching eliminates stack-manipulation dispatches in
/// real programs.
#[test]
fn static_caching_eliminates_dispatches_on_real_programs() {
    for w in all_workloads(Scale::Small) {
        let exe = compile_static(&w.image.program, 1);
        assert!(
            exe.stats.eliminated > 0,
            "{}: no eliminated instructions out of {}",
            w.name,
            exe.stats.original
        );
        assert!(exe.stats.compiled < exe.stats.original, "{}", w.name);
    }
}

/// The differential oracle holds on the *real* workload programs too, not
/// just generated ones: every engine configuration agrees, starting from
/// each workload's prepared machine image.
#[test]
fn workload_programs_agree_across_all_engines() {
    for w in all_workloads(Scale::Small) {
        let proto = w.image.machine();
        let a = stackcache_harness::cross_validate_on(&w.image.program, &proto, w.fuel())
            .unwrap_or_else(|d| panic!("{}: {d}", w.name));
        assert!(
            a.configs >= 12,
            "{}: only {} configurations",
            w.name,
            a.configs
        );
    }
}
