entry:
    lit 0
    lit 1
    swap
    lit 1
    drop
    swap
    negate
    lit 1
    +
    negate
    lit 1
    +
    +
    lit 1
    +
    negate
    lit 0
    lit 0
    lit 0
    lit 0
    halt
