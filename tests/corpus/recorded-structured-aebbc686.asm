entry:
    lit 1
L1:
    lit 7
    lit 2
    drop
    drop
    1-
    dup
    0>
    ?branch L10
    branch L1
L10:
    drop
    halt
