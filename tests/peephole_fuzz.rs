//! The dedicated peephole leader/remap fuzz campaign (ISSUE 6).
//!
//! The ROADMAP carried a long-standing suspicion against the peephole
//! rewriter's window/leader interaction under deeply nested branches:
//! the window clamp (`peephole.rs` window scan), the remap of indices
//! interior to a replaced window, and the `with_target` patching of
//! back-edges after code motion. This suite settles it two ways:
//!
//! * a deterministic ≥500-round fuzz campaign over programs nested far
//!   deeper (up to 6 levels of `if`/`loop`) than the structured
//!   generator's default of 3 — every round checks full observable
//!   equivalence (data stack, return stack, output, memory, trap
//!   identity) plus the optimizer's structural contract;
//! * named boundary regression tests for each suspect, constructed by
//!   hand: windows ending exactly on a leader, entry-point remap after
//!   the first window is removed or shrunk, and `with_target` on
//!   back-edges that jump across removed code.
//!
//! The campaign found no divergence — these tests pin the verdict so a
//! future regression in any of the three suspects fails by name.

use stackcache_harness::gen::{self, Frag};
use stackcache_vm::{exec, peephole, verify, Inst, Machine, Program, ProgramBuilder, Rng};

const FUEL: u64 = 10_000_000;

/// Full observable equivalence between `p` and its peephole-optimized
/// form: same stacks, output, memory, and (for trapping programs) the
/// same trap rendered the same way.
fn check_equivalence(p: &Program, ctx: &str) {
    let (q, stats) = peephole::optimize(p);
    assert!(verify(&q).is_ok(), "{ctx}: optimized program fails verify");
    assert!(q.len() <= p.len(), "{ctx}: optimizer grew the program");
    assert_eq!(stats.after, q.len(), "{ctx}: stats.after wrong");

    let mut m1 = Machine::with_memory(256);
    let r1 = exec::run(p, &mut m1, FUEL);
    let mut m2 = Machine::with_memory(256);
    let r2 = exec::run(&q, &mut m2, FUEL);
    match (r1, r2) {
        (Ok(_), Ok(_)) => {
            assert_eq!(m1.stack(), m2.stack(), "{ctx}: stacks differ");
            assert_eq!(m1.rstack(), m2.rstack(), "{ctx}: rstacks differ");
            assert_eq!(m1.output(), m2.output(), "{ctx}: output differs");
            assert_eq!(m1.memory(), m2.memory(), "{ctx}: memory differs");
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                std::mem::discriminant(&a),
                std::mem::discriminant(&b),
                "{ctx}: trap kinds differ ({a} vs {b})"
            );
        }
        (a, b) => panic!("{ctx}: behaviour diverged: {a:?} vs {b:?}"),
    }

    // idempotence: the fixpoint really is a fixpoint
    let (r, stats2) = peephole::optimize(&q);
    assert_eq!(r.insts(), q.insts(), "{ctx}: second pass changed code");
    assert_eq!(stats2.rewrites, 0, "{ctx}: second pass claims rewrites");
}

/// A random fragment with nesting up to `nesting` levels — twice the
/// structured generator's default, and biased toward branches so leaders
/// pile up densely (the regime the remap suspects live in).
fn deep_frag(rng: &mut Rng, nesting: u32) -> Frag {
    if nesting == 0 || rng.chance(0.25) {
        return match rng.range(0, 3) {
            0 => Frag::Ops((0..rng.range(1, 6)).map(|_| rng.below(256) as u8).collect()),
            1 => Frag::Push(rng.range_i64(-100, 100)),
            _ => Frag::PopInto,
        };
    }
    let children = |rng: &mut Rng, n: u32| -> Vec<Frag> {
        (0..rng.range(1, 4))
            .map(|_| deep_frag(rng, n - 1))
            .collect()
    };
    if rng.chance(0.5) {
        let a = children(rng, nesting);
        let b = children(rng, nesting);
        Frag::IfElse(a, b)
    } else {
        let n = rng.range(1, 3) as u8;
        Frag::Loop(n, children(rng, nesting))
    }
}

/// The campaign itself: 512 deterministic rounds of deeply nested
/// branchy programs through the full equivalence check.
#[test]
fn deep_nesting_fuzz_campaign() {
    let mut max_len = 0;
    for seed in 0..512u64 {
        let mut rng = Rng::new(0x6F_0000 + seed);
        let frags: Vec<Frag> = (0..rng.range(1, 5))
            .map(|_| deep_frag(&mut rng, 6))
            .collect();
        let p = gen::build_structured(&frags);
        max_len = max_len.max(p.len());
        check_equivalence(&p, &format!("deep-nest seed {seed}"));
    }
    // the campaign must actually reach the deep regime it advertises
    assert!(max_len > 300, "campaign programs too small ({max_len})");
}

/// The precise shape the ROADMAP suspected: a foldable `[lit, lit, op]`
/// window whose third instruction is a branch-target leader. The window
/// clamp must stop at the leader (folding across it would execute the
/// `add` once instead of per-iteration).
#[test]
fn regression_window_ending_exactly_on_a_leader() {
    // loop head IS the `add`: [lit 1, lit 2, <head> add, ...] with a
    // back-edge to the head
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(1));
    b.push(Inst::Lit(2));
    let head = b.new_label();
    b.bind(head).unwrap();
    b.push(Inst::Add);
    b.push(Inst::Dup);
    b.push(Inst::Lit(100));
    b.push(Inst::Lt);
    let out = b.new_label();
    b.branch_if_zero(out);
    b.push(Inst::Lit(3));
    b.push(Inst::Swap);
    b.branch(head);
    b.bind(out).unwrap();
    b.push(Inst::Dot);
    b.push(Inst::Halt);
    let p = b.finish().unwrap();

    let (q, _) = peephole::optimize(&p);
    // the fold of [lit 1, lit 2, add] -> [lit 3] must NOT have happened:
    // the `add` at the loop head survives as a branch target
    assert!(
        q.insts().contains(&Inst::Add),
        "leader-crossing fold removed the loop head:\n{}",
        q.listing()
    );
    check_equivalence(&p, "window ending on leader");
}

/// A leader in the *middle* of a would-be window: the clamp must shorten
/// the window to 1, not 2.
#[test]
fn regression_leader_splits_window_interior() {
    // [lit 5, <target> lit 0, drop] — (lit, drop) is a removable pair,
    // but `lit 0` is a branch target so the pair must survive
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(1));
    let skip = b.new_label();
    b.branch_if_zero(skip);
    b.push(Inst::Lit(5));
    b.bind(skip).unwrap();
    b.push(Inst::Lit(0));
    b.push(Inst::Drop);
    b.push(Inst::Depth);
    b.push(Inst::Dot);
    b.push(Inst::Halt);
    let p = b.finish().unwrap();
    check_equivalence(&p, "leader splits window");
}

/// Entry-point remap when the entry is *after* removed code: folding the
/// prelude shifts every later index, including the entry itself.
#[test]
fn regression_entry_remap_after_first_window_removal() {
    // prelude (a callee) contains a foldable triple; entry points past it
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(2));
    b.push(Inst::Lit(3));
    b.push(Inst::Mul); // folds to [lit 6]: indices after shift by 2
    b.push(Inst::OnePlus);
    b.push(Inst::Return);
    b.entry_here();
    b.push(Inst::Lit(10));
    // call back into the prelude at index 0
    b.push(Inst::Call(0));
    b.push(Inst::Add);
    b.push(Inst::Dot);
    b.push(Inst::Halt);
    let p = b.finish().unwrap();
    assert!(p.entry() > 0, "test wants a shifted entry");

    let (q, stats) = peephole::optimize(&p);
    assert!(stats.rewrites > 0, "prelude fold did not fire");
    assert!(q.entry() < p.entry(), "entry was not remapped down");
    check_equivalence(&p, "entry remap after removal");
}

/// Entry pointing at the first instruction of a removed window: the
/// remap slot for a removed-window leader must point at the replacement,
/// not past it.
#[test]
fn regression_entry_at_removed_window_start() {
    let p = {
        let mut b = ProgramBuilder::new();
        b.set_entry(0);
        b.push(Inst::Lit(4));
        b.push(Inst::Lit(5));
        b.push(Inst::Add); // entry window folds to [lit 9]
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        b.finish().unwrap()
    };
    let (q, stats) = peephole::optimize(&p);
    assert!(stats.rewrites > 0);
    assert_eq!(q.entry(), 0);
    check_equivalence(&p, "entry at removed window");
}

/// `with_target` on back-edges: a loop's back-edge jumps to an index
/// *before* removed code, so the target shifts while the branch site
/// also shifts. Both `branch` and the do-loop family carry targets.
#[test]
fn regression_back_edge_targets_remap_across_removed_code() {
    // countdown loop whose body contains removable pairs; the back-edge
    // target (loop head) sits before the removals
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(5));
    let head = b.new_label();
    b.bind(head).unwrap();
    b.push(Inst::Dup);
    b.push(Inst::Dot);
    b.push(Inst::Dup);
    b.push(Inst::Drop); // removable pair inside the body
    b.push(Inst::Lit(0));
    b.push(Inst::Drop); // removable pair inside the body
    b.push(Inst::OneMinus);
    b.push(Inst::Dup);
    b.push(Inst::ZeroGt);
    let out = b.new_label();
    b.branch_if_zero(out);
    b.branch(head); // back-edge across the removed pairs
    b.bind(out).unwrap();
    b.push(Inst::Drop);
    b.push(Inst::Halt);
    let p = b.finish().unwrap();

    let (q, stats) = peephole::optimize(&p);
    assert!(stats.rewrites > 0, "body pairs did not fold");
    assert!(q.len() < p.len());
    check_equivalence(&p, "back-edge remap");
}

/// Do-loop back-edges (`LoopInc`, `QDoSetup`) are remapped through the
/// same `with_target` path as plain branches.
#[test]
fn regression_do_loop_back_edges_remap() {
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(4)); // limit
    b.push(Inst::Lit(0)); // start
    let end = b.new_label();
    b.qdo(end);
    let body = b.new_label();
    b.bind(body).unwrap();
    b.push(Inst::LoopI);
    b.push(Inst::Dot);
    b.push(Inst::Lit(0));
    b.push(Inst::Drop); // removable pair before the back-edge
    b.loop_inc(body);
    b.bind(end).unwrap();
    b.push(Inst::Halt);
    let p = b.finish().unwrap();

    let (_, stats) = peephole::optimize(&p);
    assert!(stats.rewrites > 0, "pair inside do-loop did not fold");
    check_equivalence(&p, "do-loop back-edge remap");
}

/// A window at the very end of the program, and a branch target equal to
/// `insts.len()` after the final window shrinks — the remap table's
/// one-past-the-end sentinel.
#[test]
fn regression_fold_at_program_end_and_past_end_targets() {
    // the final three instructions fold; nothing after them to remap
    let p_tail = {
        let mut b = ProgramBuilder::new();
        b.push(Inst::Lit(1));
        b.push(Inst::Dot);
        b.push(Inst::Lit(2));
        b.push(Inst::Lit(3));
        b.push(Inst::Add);
        b.push(Inst::Dot);
        b.push(Inst::Halt);
        b.finish().unwrap()
    };
    let (q, stats) = peephole::optimize(&p_tail);
    assert!(stats.rewrites > 0);
    check_equivalence(&p_tail, "fold at program end");
    assert!(q.len() < p_tail.len());

    // a conditional skip to the join point right after folded code: the
    // target lands exactly where removed instructions used to start
    let mut b = ProgramBuilder::new();
    b.push(Inst::Lit(0));
    let join = b.new_label();
    b.branch_if_zero(join);
    b.push(Inst::Lit(7));
    b.push(Inst::Drop); // removable pair just before the join
    b.bind(join).unwrap();
    b.push(Inst::Depth);
    b.push(Inst::Dot);
    b.push(Inst::Halt);
    let p = b.finish().unwrap();
    check_equivalence(&p, "target at join after removed code");
}

/// The named verdict test for the ROADMAP carry-over: a fixed deeply
/// nested program (from the campaign's input space) whose optimized form
/// is pinned byte-for-byte. If the leader/remap logic ever changes
/// behaviour, this fails by name rather than deep in a fuzz loop.
#[test]
fn regression_leader_remap_verdict_under_nested_branches() {
    let frags = vec![Frag::Loop(
        2,
        vec![Frag::IfElse(
            vec![
                Frag::Loop(2, vec![Frag::Ops(vec![4, 5]), Frag::Push(3)]),
                Frag::PopInto,
            ],
            vec![Frag::IfElse(
                vec![Frag::Ops(vec![2])],
                vec![Frag::Loop(1, vec![Frag::Push(-7), Frag::Ops(vec![5, 2])])],
            )],
        )],
    )];
    let p = gen::build_structured(&frags);
    check_equivalence(&p, "verdict program");

    let (q, _) = peephole::optimize(&p);
    // pin the observable outcome, not just self-consistency
    let mut m = Machine::with_memory(256);
    exec::run(&q, &mut m, FUEL).expect("verdict program halts");
    let mut reference = Machine::with_memory(256);
    exec::run(&p, &mut reference, FUEL).expect("reference halts");
    assert_eq!(m.output(), reference.output());
    // and pin that optimization actually engaged on this shape
    assert!(q.len() < p.len(), "expected shrinkage on the verdict shape");
}
