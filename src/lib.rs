//! **Stack caching for interpreters** — a from-scratch Rust reproduction of
//! M. Anton Ertl's PLDI 1995 paper.
//!
//! Virtual stack machines spend much of their time loading instruction
//! operands from the stack in memory and storing results back. *Stack
//! caching* keeps a varying number of top-of-stack items in machine
//! registers instead, driven by a finite state machine over *cache
//! states*. The paper develops two methods: **dynamic** caching, where the
//! interpreter tracks the state (one specialized interpreter copy per
//! state), and **static** caching, where the compiler tracks it — common
//! instructions exist in several specialized versions and pure stack
//! manipulations compile to nothing at all.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`vm`] — the virtual stack machine substrate (ISA, machine,
//!   reference interpreter, verifier, dispatch techniques),
//! * [`core`] — the paper's contribution: cache states and organizations,
//!   the transition engine, counting regimes, the static-caching compiler,
//!   and real cached interpreters,
//! * [`forth`] — a Forth front end producing VM programs,
//! * [`workloads`] — the benchmark suite of the paper's evaluation.
//!
//! # Quick start
//!
//! ```
//! use stack_caching::forth::compile_source;
//! use stack_caching::core::interp::{compile_static, run_staticcache};
//!
//! // Compile a Forth program...
//! let image = compile_source(
//!     ": sum-squares ( n -- sum ) 0 swap 1+ 1 ?do i dup * + loop ;
//!      : main 100 sum-squares . ;",
//!     "main",
//! )?;
//!
//! // ...then statically stack-cache it and run it: stack manipulations
//! // have been compiled away and the top of stack lives in registers.
//! let exe = compile_static(&image.program, 1);
//! let mut machine = image.machine();
//! run_staticcache(&exe, &mut machine, 1_000_000)?;
//! assert_eq!(machine.output_string(), "338350 ");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use stackcache_core as core;
pub use stackcache_forth as forth;
pub use stackcache_vm as vm;
pub use stackcache_workloads as workloads;
